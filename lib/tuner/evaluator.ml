(* Compile-verify-score of one tuning candidate (see evaluator.mli). *)

type score = {
  sc_dram_bytes : int;
  sc_staged_bytes : int;
  sc_tiles : int;
  sc_wavefronts : int;
  sc_parallelism : float;
}

let cost s = float_of_int (s.sc_dram_bytes + s.sc_staged_bytes)

let compare_scores a b =
  let c = compare (cost a) (cost b) in
  if c <> 0 then c
  else
    let c = compare a.sc_dram_bytes b.sc_dram_bytes in
    if c <> 0 then c
    else
      let c = compare a.sc_staged_bytes b.sc_staged_bytes in
      if c <> 0 then c else compare b.sc_parallelism a.sc_parallelism

let score_to_json s =
  let open Json_util.Json in
  Obj
    [ ("dram_bytes", Num (float_of_int s.sc_dram_bytes));
      ("staged_bytes", Num (float_of_int s.sc_staged_bytes));
      ("tiles", Num (float_of_int s.sc_tiles));
      ("wavefronts", Num (float_of_int s.sc_wavefronts));
      ("parallelism", Num s.sc_parallelism)
    ]

let score_of_json j =
  let open Json_util.Json in
  let num k =
    match member k j with
    | Some (Num f) -> Ok f
    | _ -> Error (Printf.sprintf "score: missing %s" k)
  in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* dram = num "dram_bytes" in
  let* staged = num "staged_bytes" in
  let* tiles = num "tiles" in
  let* waves = num "wavefronts" in
  let* par = num "parallelism" in
  Ok
    { sc_dram_bytes = int_of_float dram;
      sc_staged_bytes = int_of_float staged;
      sc_tiles = int_of_float tiles;
      sc_wavefronts = int_of_float waves;
      sc_parallelism = par
    }

type outcome =
  | Scored of score
  | Illegal of string
  | Failed of string

(* The tile graph only informs the parallelism estimate; a soft cap
   keeps huge tilings from dominating evaluation time. *)
let tile_graph_cap = 256

let version_of ~target p (c : Search_space.candidate) =
  match c.Search_space.cd_flow with
  | Search_space.Ours ->
      Exp_util.ours ~tile_sizes:c.Search_space.cd_tiles
        ~fuse_reductions:c.Search_space.cd_fuse_reductions
        ~recompute_limit:c.Search_space.cd_recompute_limit ~target p
  | Search_space.Minfuse ->
      Exp_util.heuristic ~tile:c.Search_space.cd_tiles.(0)
        ~fuse_reductions:c.Search_space.cd_fuse_reductions ~target
        Fusion.Minfuse p
  | Search_space.Smartfuse ->
      Exp_util.heuristic ~tile:c.Search_space.cd_tiles.(0)
        ~fuse_reductions:c.Search_space.cd_fuse_reductions ~target
        Fusion.Smartfuse p
  | Search_space.Maxfuse ->
      Exp_util.heuristic ~tile:c.Search_space.cd_tiles.(0)
        ~fuse_reductions:c.Search_space.cd_fuse_reductions ~target
        Fusion.Maxfuse p

let deps_of p (v : Exp_util.version) =
  match v.Exp_util.flavor with
  | Exp_util.Ours c -> c.Core.Pipeline.deps
  | Exp_util.Naive | Exp_util.Baseline _ -> Deps.compute p

let score_version p (v : Exp_util.version) =
  let clusters = Exp_util.clusters p v in
  let traffic = Footprints.program_traffic p clusters in
  let staged = Footprints.max_staged_bytes p clusters in
  let graph =
    Tile_graph.extract ~max_tiles:tile_graph_cap p ~deps:(deps_of p v)
      v.Exp_util.ast
  in
  let tiles = Tile_graph.n_items graph in
  let wavefronts =
    Array.fold_left (fun acc l -> max acc (l + 1)) 0 (Tile_graph.levels graph)
  in
  { sc_dram_bytes = traffic.Footprints.read_bytes + traffic.Footprints.write_bytes;
    sc_staged_bytes = staged;
    sc_tiles = tiles;
    sc_wavefronts = wavefronts;
    sc_parallelism =
      (if wavefronts = 0 then 0.0
       else float_of_int tiles /. float_of_int wavefronts)
  }

let evaluate_one ?(verify = true) ~target p c =
  Obs.count "tuner.evaluated";
  match
    Obs.span "tuner.evaluate" (fun () ->
        let v = version_of ~target p c in
        let illegal =
          if not verify then None
          else
            let report = Legality.check p (Exp_util.tree_of p v) in
            match report.Legality.rep_violations with
            | [] -> None
            | vl :: _ -> Some (Legality.violation_string vl)
        in
        match illegal with
        | Some msg -> Illegal msg
        | None -> Scored (score_version p v))
  with
  | Scored _ as s -> s
  | Illegal _ as i ->
      Obs.count "tuner.illegal";
      i
  | Failed _ as f -> f
  | exception e ->
      Obs.count "tuner.failed";
      Failed (Printexc.to_string e)

let evaluate ?(jobs = 1) ?verify ~target p cands =
  let arr = Array.of_list cands in
  let n = Array.length arr in
  let out = Array.make n (Failed "not evaluated") in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then
    Array.iteri (fun i c -> out.(i) <- evaluate_one ?verify ~target p c) arr
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- evaluate_one ?verify ~target p arr.(i);
          loop ()
        end
      in
      loop ()
    in
    let doms = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join doms
  end;
  List.mapi (fun i c -> (c, out.(i))) cands
