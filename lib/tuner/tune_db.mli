(** Persistent tuning database: a versioned on-disk JSON map from
    {e tuning keys} to the best configuration found for them.

    A key is content-addressed: the MD5 digest of a canonical rendering
    of the program (name, bound parameters, array extents, statement
    domains/accesses/ops) combined with the search-space signature and
    the compilation target. Re-tuning an unchanged workload with an
    unchanged space hits the stored entry and answers instantly; any
    change to the program, the machine-model constants or the space
    produces a fresh key and re-tunes. [memcomp serve] consults the
    same database at compile time to apply tuned configurations. *)

type entry = {
  en_workload : string;
  en_key : string;
  en_created : string;  (** UTC ISO-8601 *)
  en_strategy : string;
  en_seed : int;
  en_budget : int;  (** evaluation budget the search ran under *)
  en_best : Search_space.candidate;
  en_best_score : Evaluator.score;
  en_default : Search_space.candidate;
  en_default_score : Evaluator.score;
  en_evaluated : int;  (** candidates actually compiled and scored *)
  en_illegal : int;  (** hard-rejected by the legality verifier *)
  en_failed : int;  (** compilations that raised *)
  en_pruned : int;  (** dropped by the footprint bound, never compiled *)
  en_trajectory : (string * float) list;
      (** best-so-far trace: (candidate name, cost) at each improvement *)
}

type t

val schema_version : int

val empty : t

val key : target:string -> Prog.t -> Search_space.t -> string
(** The content-addressed tuning key (workload digest x space signature
    x target). *)

val prog_digest : Prog.t -> string
(** MD5 hex digest of the canonical program rendering alone. *)

val find : t -> string -> entry option

val add : t -> entry -> t
(** Insert or replace the entry under [entry.en_key]. *)

val entries : t -> entry list
(** All entries, sorted by key (deterministic). *)

val load : string -> (t, string) result
(** Read a database file. A missing or empty file is an empty
    database; a malformed or wrong-schema file is an [Error]. *)

val save : string -> t -> unit

val entry_to_json : entry -> Json_util.Json.t

val entry_of_json : Json_util.Json.t -> (entry, string) result

val make_entry :
  workload:string -> key:string -> strategy:string -> seed:int ->
  budget:int -> best:Search_space.candidate * Evaluator.score ->
  default:Search_space.candidate * Evaluator.score -> evaluated:int ->
  illegal:int -> failed:int -> pruned:int ->
  trajectory:(string * float) list -> entry
(** Stamp an entry with the current UTC time. *)
