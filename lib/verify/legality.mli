(** Independent static legality checker for final schedule trees.

    Re-derives the statement-instance execution order induced by a
    schedule tree (sequence branches, bands, point bands, extension
    nodes, "skipped" marks) directly from [sched_tree] and
    [presburger], sharing no code with [lib/scheduler]'s legality
    predicates, and discharges every memory-based dependence of the
    program by emptiness tests: an arc is accepted only when some
    source occurrence provably executes it early enough at some shared
    block level of the schedule-time prefix (block level 0 is the
    classic whole-program reversed-arc test; the tile-band prefix
    level is what legitimizes post-tiling fusion's recomputation).

    Over-approximation is only ever applied where it is conservative
    (it can produce a spurious violation, never hide a real one);
    source-side coverage claims require integer-exact projections and
    otherwise claim nothing (counted in [rep_inexact]). Dynamic guards
    are opaque and assumed to execute, exactly as the scheduler and
    code generator treat them. *)

exception Structural of string
(** A malformed tree (e.g. an extension node referencing an unknown
    schedule tuple, or unbound parameters). *)

type violation = {
  vl_kind : string;  (** "raw" | "war" | "waw" | "liveout" | "structural" *)
  vl_src : string;
  vl_dst : string;
  vl_array : string;
  vl_path : string;  (** schedule path of the violated occurrence *)
  vl_witness : (int array * int array) option;
      (** an uncovered source/destination instance pair *)
  vl_detail : string;
}

type report = {
  rep_occurrences : int;  (** (leaf, statement) occurrences collected *)
  rep_deps_checked : int;
  rep_violations : violation list;
  rep_inexact : int;
      (** coverage candidates abandoned for lack of an exact projection *)
}

val check : Prog.t -> Schedule_tree.t -> report
(** Verify one final schedule tree against the program's dependences
    and live-out coverage. An empty [rep_violations] means every
    dependence arc was proven covered and every live-out writer
    instance executes. *)

val violation_string : violation -> string

val naive_tree : Prog.t -> Schedule_tree.t
(** Textual-order reference schedule (one filter + identity band per
    statement, under a sequence), built from [sched_tree] primitives
    only; used as the independent reference for the naive flow and by
    the mutation tests. *)
