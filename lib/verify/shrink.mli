(** Greedy minimizer for failing {!Random_pipeline} specs.

    Mutations tried per round (in order): drop a stage (later stages
    first, so dead suffixes unwind quickly), collapse 2D to 1D, shrink
    stencil/reduction radii and sampling alignment, merge a pointwise
    stage's sources, reduce the input extent. A mutation is kept only
    when the spec stays feasible and [predicate] still holds on it, so
    the result still reproduces the original failure. *)

type outcome = {
  shrunk : Random_pipeline.spec;
  evals : int;  (** predicate evaluations spent *)
  rounds : int;
}

val shrink :
  ?max_evals:int ->
  Random_pipeline.spec ->
  predicate:(Random_pipeline.spec -> bool) ->
  outcome
(** [predicate sp] must return [true] when the failure still reproduces
    on [Random_pipeline.build_spec sp]; exceptions count as [false].
    [max_evals] (default 400) bounds predicate evaluations — each one
    typically recompiles the program through a full flow. *)

val repro_ml : ?seed:int -> note:string -> Random_pipeline.spec -> string
(** Contents of a self-contained OCaml repro file for the spec. *)
