(* Greedy minimizer for failing random-pipeline specs.

   Given a spec whose lowered program makes [predicate] true (the
   caller encodes "this still reproduces the failure"), repeatedly try
   structure-reducing mutations — drop a stage, reduce the input
   extent, collapse 2D to 1D, shrink stencil/reduction radii and
   sampling alignment, merge a pointwise stage's two sources — keeping
   each mutation only when the spec stays feasible and the predicate
   still holds. The result is a local minimum: no single remaining
   mutation preserves the failure. *)

type outcome = {
  shrunk : Random_pipeline.spec;
  evals : int;  (** predicate evaluations spent *)
  rounds : int;
}

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

(* Candidate one-step reductions, cheapest structural win first. *)
let mutations (sp : Random_pipeline.spec) =
  let with_stages stages = { sp with Random_pipeline.sp_stages = stages } in
  let n = List.length sp.Random_pipeline.sp_stages in
  let drops =
    (* later stages first: dropping the live-out stage promotes its
       predecessor, which unwinds dead suffixes quickly *)
    List.init n (fun i -> with_stages (drop_nth sp.Random_pipeline.sp_stages (n - 1 - i)))
  in
  let to_1d =
    if sp.Random_pipeline.sp_nd > 1 then [ { sp with Random_pipeline.sp_nd = 1 } ]
    else []
  in
  let extents =
    List.filter_map
      (fun e ->
        if e < sp.Random_pipeline.sp_input then
          Some { sp with Random_pipeline.sp_input = e }
        else None)
      [ 6; sp.Random_pipeline.sp_input / 2; sp.Random_pipeline.sp_input - 1 ]
  in
  let stage_tweaks =
    List.concat
      (List.mapi
         (fun i (st : Random_pipeline.stage) ->
           let replace kind =
             with_stages
               (List.mapi
                  (fun j s ->
                    if j = i then { s with Random_pipeline.sg_kind = kind } else s)
                  sp.Random_pipeline.sp_stages)
           in
           match st.Random_pipeline.sg_kind with
           | Random_pipeline.Stencil r when r > 1 ->
               [ replace (Random_pipeline.Stencil 1) ]
           | Random_pipeline.Down a when a > 0 ->
               [ replace (Random_pipeline.Down 0) ]
           | Random_pipeline.Reduce r when r > 1 ->
               [ replace (Random_pipeline.Reduce 1) ]
           | Random_pipeline.Pointwise src2
             when src2 <> st.Random_pipeline.sg_src ->
               [ replace (Random_pipeline.Pointwise st.Random_pipeline.sg_src) ]
           | _ -> [])
         sp.Random_pipeline.sp_stages)
  in
  drops @ to_1d @ stage_tweaks @ extents

let shrink ?(max_evals = 400) spec ~predicate =
  Obs.span "verify.shrink" @@ fun () ->
  let evals = ref 0 in
  let try_pred sp =
    if !evals >= max_evals then false
    else begin
      incr evals;
      Obs.count "verify.shrink_evals";
      Random_pipeline.spec_valid sp
      && (try predicate sp with _ -> false)
    end
  in
  let rounds = ref 0 in
  let current = ref spec in
  let progress = ref true in
  while !progress && !evals < max_evals do
    incr rounds;
    progress := false;
    let rec first_accepted = function
      | [] -> ()
      | cand :: rest ->
          if try_pred cand then begin
            current := cand;
            progress := true
          end
          else first_accepted rest
    in
    first_accepted (mutations !current)
  done;
  { shrunk = !current; evals = !evals; rounds = !rounds }

(* A self-contained OCaml repro file: rebuild the minimized program
   with [Random_pipeline.build_spec spec]. *)
let repro_ml ?seed ~note spec =
  let seed_line =
    match seed with
    | Some s -> Printf.sprintf "   Original generator seed: %d\n" s
    | None -> ""
  in
  Printf.sprintf
    "(* Minimized fuzz repro — %s\n%s\n\
    \   Rebuild the failing program with:\n\
    \     let prog = Random_pipeline.build_spec spec\n\
    \   and re-run the flows of test/test_fuzz.ml against it. *)\n\n\
     let spec =\n%s\n\n\
     let prog = Random_pipeline.build_spec spec\n\n\
     let () =\n\
    \  print_endline (Random_pipeline.describe prog)\n"
    note seed_line
    (Random_pipeline.spec_to_ocaml spec)
