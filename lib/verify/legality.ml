open Presburger

(* Independent static legality checker for final schedule trees.

   This module re-derives, from a schedule tree alone, the set of
   execution times of every statement instance — mirroring the code
   generator's semantics (sequence branches order children, bands add
   schedule dimensions, extension nodes inject recomputed instances
   under the referenced band, "skipped" marks prune) but sharing no
   code with lib/scheduler's legality predicates. Every presburger
   dependence of the program is then discharged by emptiness tests:
   a dependence arc i -> j is satisfied when, for some occurrence of
   the source statement and some block level k of the schedule-time
   prefix shared by the two occurrences,

     - j never executes in a block where i does not      (coverage), and
     - within every shared block, all executions of i precede all
       executions of j lexicographically                 (ordering).

   k = 0 is the classic whole-program "no reversed arc" test; deeper k
   (e.g. the tile-band prefix) is what legitimizes the paper's
   post-tiling fusion, where extension nodes re-execute producer
   instances inside every consuming tile.

   Soundness policy for Fourier-Motzkin projections: anything that
   *grows* a "bad" set or the needed-arc set may be over-approximated
   (conservative: can only produce spurious violations, never hide
   one). The source-side prefix projection asserts that the source
   *does* execute at a block, so it must be exact; when exactness
   cannot be certified the candidate simply covers nothing (counted in
   [rep_inexact]).

   Dynamic guards ([Prog.stmt.guard]) are opaque to this analysis, as
   they are to the scheduler: all instances of the domain are assumed
   to execute. The dynamic shadow validator covers guard behavior. *)

exception Structural of string

(* ------------------------------------------------------------------ *)
(* Occurrence collection                                               *)
(* ------------------------------------------------------------------ *)

(* Where an occurrence sits in the tree: one element per sequence
   branch taken and per band traversed. Node ids are unique per walk,
   so equal elements imply the same tree node (two sibling subtrees
   can allocate bands at identical time positions). *)
type path_elem =
  | Pseq of int * int * int  (** node id, time position, child index *)
  | Pband of int * int * int  (** node id, first time position, members *)

(* Destination column of one map dimension in the occurrence system. *)
type col = Time of int | Dim of int

(* Constraint sources accumulated along the walk; materialized into a
   flat system over [t_0 .. t_{M-1}; d_0 .. d_{nd-1}] once the global
   number of time dimensions M is known. *)
type part =
  | Pdom of Bset.t  (** parameters bound; columns are the statement dims *)
  | Pmap of Bmap.t * col array * col array
      (** a band piece (in = dims, out = times) or an extension piece
          (in = times of the referenced band, out = dims) *)
  | Pconst of int * int  (** time position = constant *)

type occurrence = {
  occ_stmt : string;
  occ_nd : int;
  occ_parts : part list;
  occ_path : path_elem list;  (** root first *)
  occ_len : int;  (** time dims used, including the textual-order one *)
}

let path_string occ =
  let elem = function
    | Pseq (_, p, i) -> Printf.sprintf "seq@%d[%d]" p i
    | Pband (_, p, n) -> Printf.sprintf "band@%d(x%d)" p n
  in
  String.concat " / " (List.map elem occ.occ_path) ^ " :: " ^ occ.occ_stmt

type wstate = { ws_stmt : Prog.stmt; ws_parts : part list }

let no_params_set b =
  if Bset.n_params b <> 0 then
    raise
      (Structural
         (Printf.sprintf "unbound parameters in set over %s" (Bset.tuple b)));
  b

let no_params_map m =
  if Bmap.n_params m <> 0 then
    raise
      (Structural
         (Printf.sprintf "unbound parameters in map %s -> %s"
            (Bmap.space m).Space.in_tuple (Bmap.space m).Space.out_tuple));
  m

(* Walk the tree, mirroring Gen's statement-state semantics: one
   occurrence per (leaf, active statement state). *)
let collect (p : Prog.t) tree =
  let params = p.Prog.params in
  let next_id = ref 0 in
  let fresh () =
    incr next_id;
    !next_id
  in
  let occs = ref [] in
  let rec go ~pos ~sched ~seq_parts ~path active (node : Schedule_tree.t) =
    match node with
    | Schedule_tree.Leaf ->
        let leaf_id = fresh () in
        List.iter
          (fun ws ->
            let idx = Prog.stmt_index p ws.ws_stmt.Prog.stmt_name in
            occs :=
              { occ_stmt = ws.ws_stmt.Prog.stmt_name;
                occ_nd = Bset.n_dims ws.ws_stmt.Prog.domain;
                occ_parts = Pconst (pos, idx) :: (seq_parts @ ws.ws_parts);
                occ_path = List.rev (Pseq (leaf_id, pos, idx) :: path);
                occ_len = pos + 1
              }
              :: !occs)
          active
    | Schedule_tree.Domain (dom, child) ->
        let dom = Iset.bind_params dom params in
        let active =
          List.map
            (fun piece ->
              { ws_stmt = Prog.find_stmt p (Bset.tuple piece);
                ws_parts = [ Pdom (no_params_set piece) ]
              })
            (Iset.pieces dom)
        in
        go ~pos ~sched ~seq_parts ~path active child
    | Schedule_tree.Filter (f, child) ->
        let names = Iset.tuples f in
        let active =
          List.filter
            (fun ws -> List.mem ws.ws_stmt.Prog.stmt_name names)
            active
        in
        if active <> [] then go ~pos ~sched ~seq_parts ~path active child
    | Schedule_tree.Sequence cs ->
        let id = fresh () in
        List.iteri
          (fun i c ->
            go ~pos:(pos + 1) ~sched
              ~seq_parts:(Pconst (pos, i) :: seq_parts)
              ~path:(Pseq (id, pos, i) :: path)
              active c)
          cs
    | Schedule_tree.Mark ("skipped", _) -> ()
    | Schedule_tree.Mark (_, child) -> go ~pos ~sched ~seq_parts ~path active child
    | Schedule_tree.Extension (ext, child) ->
        let ext = Imap.bind_params ext params in
        let news =
          List.map
            (fun piece ->
              let sp = Bmap.space piece in
              let stmt = Prog.find_stmt p sp.Space.out_tuple in
              let tcols =
                match List.assoc_opt sp.Space.in_tuple sched with
                | Some a -> a
                | None ->
                    raise
                      (Structural
                         ("extension over unknown schedule tuple "
                        ^ sp.Space.in_tuple))
              in
              let nd = Bset.n_dims stmt.Prog.domain in
              let dom =
                no_params_set (Bset.bind_params stmt.Prog.domain params)
              in
              { ws_stmt = stmt;
                ws_parts =
                  [ Pmap
                      ( no_params_map piece,
                        Array.map (fun c -> Time c) tcols,
                        Array.init nd (fun i -> Dim i) );
                    Pdom dom
                  ]
              })
            (Imap.pieces ext)
        in
        go ~pos ~sched ~seq_parts ~path (active @ news) child
    | Schedule_tree.Band (b, child) ->
        let pieces = Imap.pieces (Imap.bind_params b.Schedule_tree.partial params) in
        let n = b.Schedule_tree.n_members in
        let piece_for ws =
          List.find_opt
            (fun pc ->
              (Bmap.space pc).Space.in_tuple = ws.ws_stmt.Prog.stmt_name)
            pieces
        in
        let schedules_someone = List.exists (fun ws -> piece_for ws <> None) active in
        if n = 0 || not schedules_someone then
          go ~pos ~sched ~seq_parts ~path active child
        else begin
          let id = fresh () in
          let tcols = Array.init n (fun j -> pos + j) in
          let out_tuple = ref None in
          let active =
            List.map
              (fun ws ->
                match piece_for ws with
                | None -> ws
                | Some pc ->
                    out_tuple := Some (Bmap.space pc).Space.out_tuple;
                    let nd = Bset.n_dims ws.ws_stmt.Prog.domain in
                    { ws with
                      ws_parts =
                        Pmap
                          ( no_params_map pc,
                            Array.init nd (fun i -> Dim i),
                            Array.map (fun c -> Time c) tcols )
                        :: ws.ws_parts
                    })
              active
          in
          let sched =
            match !out_tuple with Some t -> (t, tcols) :: sched | None -> sched
          in
          go ~pos:(pos + n) ~sched ~seq_parts
            ~path:(Pband (id, pos, n) :: path)
            active child
        end
  in
  go ~pos:0 ~sched:[] ~seq_parts:[] ~path:[] [] tree;
  List.rev !occs

(* ------------------------------------------------------------------ *)
(* Materialization: flat constraint systems over [times; dims]         *)
(* ------------------------------------------------------------------ *)

let materialize ~m occ =
  let width = m + occ.occ_nd in
  let lift cstrs target =
    List.map
      (fun (c : Cstr.t) ->
        if Cstr.nvars c <> Array.length target then
          raise (Structural "constraint width mismatch during lifting");
        let row = Array.make width 0 in
        Array.iteri (fun i col -> row.(col) <- row.(col) + c.Cstr.coef.(i)) target;
        { c with Cstr.coef = row })
      cstrs
  in
  let col_of = function Time t -> t | Dim d -> m + d in
  let of_part = function
    | Pconst (pos, v) ->
        let row = Array.make width 0 in
        row.(pos) <- 1;
        [ Cstr.eq row (-v) ]
    | Pdom b ->
        lift b.Bset.cstrs (Array.init (Bset.n_dims b) (fun i -> m + i))
    | Pmap (bm, ins, outs) ->
        lift bm.Bmap.cstrs
          (Array.append (Array.map col_of ins) (Array.map col_of outs))
  in
  let padding =
    List.init (m - occ.occ_len) (fun q ->
        let row = Array.make width 0 in
        row.(occ.occ_len + q) <- 1;
        Cstr.eq row 0)
  in
  (List.concat_map of_part occ.occ_parts @ padding, width)

let sys_empty ~nvars sys =
  try Fm.is_empty ~nvars sys with Fm.Inexact _ -> false

(* Rational emptiness: eliminate every variable with the
   over-approximating shadow and look for a contradiction. Sound in
   the conservative direction only — [false] means "could not certify
   empty" — but never falls into [Fm.is_empty]'s bounded-enumeration
   fallback, which is intractable on the wide ordering systems the
   coverage fast path generates. *)
let sys_empty_rational ~nvars sys =
  match
    Fm.eliminate_many ~exact:false ~vars:(List.init nvars (fun i -> i)) sys
  with
  | residue ->
      List.exists
        (fun c ->
          match Cstr.simplify c with Cstr.Trivial_false -> true | _ -> false)
        residue
  | exception Fm.Inexact _ -> false

(* Occurrence with its flat system materialized once: [check] iterates
   the quadratic (source occurrence x destination occurrence x block
   level) space, so the per-occurrence work is hoisted out of it.
   [oc_consts.(q)] is the statically known value of time dim q (from
   sequence positions, the leaf textual-order constant and padding);
   it decides most ordering disjuncts without any emptiness test. *)
type oc = {
  o : occurrence;
  oc_id : int;
  oc_sys : Cstr.t list;  (* width m + nd *)
  oc_consts : int option array;  (* length m *)
}

let oc_of ~m id occ =
  let sys, _ = materialize ~m occ in
  let consts = Array.make m None in
  List.iter
    (function
      | Pconst (pos, v) -> consts.(pos) <- Some v
      | Pdom _ | Pmap _ -> ())
    occ.occ_parts;
  for q = occ.occ_len to m - 1 do
    consts.(q) <- Some 0
  done;
  { o = occ; oc_id = id; oc_sys = sys; oc_consts = consts }

(* Execution domain of an occurrence (its instances, over the statement
   dims), memoized per occurrence; over-approximate when inexact. *)
let exec_dom ~m ~cache oc =
  match Hashtbl.find_opt cache oc.oc_id with
  | Some r -> r
  | None ->
      let vars = List.init m (fun q -> q) in
      let cstrs =
        try Fm.eliminate_many ~exact:true ~vars oc.oc_sys
        with Fm.Inexact _ -> Fm.eliminate_many ~exact:false ~vars oc.oc_sys
      in
      let r = List.map (fun c -> Cstr.remove_vars c ~pos:0 ~count:m) cstrs in
      Hashtbl.replace cache oc.oc_id r;
      r

(* Relation [u(k); d]: instance d has an execution time whose first k
   dims equal u, memoized per (occurrence, k, exactness). Raises
   [Fm.Inexact] when [exact] and uncertifiable. *)
let prefix_proj ~m ~k ~exact ~cache oc =
  match Hashtbl.find_opt cache (oc.oc_id, k, exact) with
  | Some (Ok r) -> r
  | Some (Error e) -> raise e
  | None -> (
      let vars = List.init (m - k) (fun q -> k + q) in
      match
        let cstrs =
          if exact then Fm.eliminate_many ~exact:true ~vars oc.oc_sys
          else
            try Fm.eliminate_many ~exact:true ~vars oc.oc_sys
            with Fm.Inexact _ -> Fm.eliminate_many ~exact:false ~vars oc.oc_sys
        in
        List.map (fun c -> Cstr.remove_vars c ~pos:k ~count:(m - k)) cstrs
      with
      | r ->
          Hashtbl.replace cache (oc.oc_id, k, exact) (Ok r);
          r
      | exception (Fm.Inexact _ as e) ->
          Hashtbl.replace cache (oc.oc_id, k, exact) (Error e);
          raise e)

(* ------------------------------------------------------------------ *)
(* Per-dependence coverage check                                       *)
(* ------------------------------------------------------------------ *)

type violation = {
  vl_kind : string;  (** "raw" | "war" | "waw" | "liveout" | "structural" *)
  vl_src : string;
  vl_dst : string;
  vl_array : string;
  vl_path : string;  (** schedule path of the violated occurrence *)
  vl_witness : (int array * int array) option;
      (** a source/destination instance pair left uncovered *)
  vl_detail : string;
}

type report = {
  rep_occurrences : int;
  rep_deps_checked : int;
  rep_violations : violation list;
  rep_inexact : int;
      (** candidate coverage claims abandoned because a source-side
          projection could not be certified integer-exact *)
}

let kind_string = function
  | Deps.Raw -> "raw"
  | Deps.War -> "war"
  | Deps.Waw -> "waw"

let names_of n prefix = List.init n (fun i -> Printf.sprintf "%s%d" prefix i)

(* Remap a system over [u(k); d(nd)] into a wider row where column
   [targets.(i)] receives source column i. *)
let remap width targets cstrs =
  List.map
    (fun (c : Cstr.t) ->
      let row = Array.make width 0 in
      Array.iteri (fun i col -> row.(col) <- row.(col) + c.Cstr.coef.(i)) targets;
      { c with Cstr.coef = row })
    cstrs

(* Boundary candidates of the structural prefix shared by two
   occurrence paths, deepest first (plus the global candidate 0). *)
let candidates os od =
  let rec shared acc a b =
    match (a, b) with
    | x :: a', y :: b' when x = y ->
        let boundary =
          match x with Pseq (_, p, _) -> p + 1 | Pband (_, p, n) -> p + n
        in
        shared (boundary :: acc) a' b'
    | _ -> acc
  in
  List.sort_uniq (fun a b -> compare b a)
    (0 :: shared [] os.occ_path od.occ_path)

let check (p : Prog.t) tree =
  Obs.span "verify.check" @@ fun () ->
  let params = p.Prog.params in
  let occs = collect p tree in
  let m = List.fold_left (fun acc o -> max acc o.occ_len) 0 occs in
  (* drop occurrences that never execute (e.g. an extension piece whose
     relation is empty after parameter binding) *)
  let occs =
    List.mapi (fun i o -> oc_of ~m i o) occs
    |> List.filter (fun oc ->
           not (sys_empty ~nvars:(m + oc.o.occ_nd) oc.oc_sys))
  in
  let exec_cache = Hashtbl.create 64 in
  let proj_cache = Hashtbl.create 256 in
  let by_stmt name = List.filter (fun oc -> oc.o.occ_stmt = name) occs in
  let inexact = ref 0 in
  let violations = ref [] in
  let deps = Obs.span "verify.deps" (fun () -> Deps.compute p) in
  let check_dep (d : Deps.t) =
    Obs.count "verify.deps_checked";
    if Sys.getenv_opt "MEMCOMP_VERIFY_DEBUG" <> None then
      Printf.eprintf "DEP %s %s -> %s on %s (%.0fs)\n%!"
        (kind_string d.Deps.kind) d.Deps.src d.Deps.dst d.Deps.array
        (Sys.time ());
    let src_stmt = Prog.find_stmt p d.Deps.src in
    let dst_stmt = Prog.find_stmt p d.Deps.dst in
    let n_s = Bset.n_dims src_stmt.Prog.domain in
    let n_t = Bset.n_dims dst_stmt.Prog.domain in
    let arc_space = Space.set_space "arc" (names_of n_s "i" @ names_of n_t "j") in
    let rels =
      List.map no_params_map (Imap.pieces (Imap.bind_params d.Deps.rel params))
    in
    let src_occs = by_stmt d.Deps.src and dst_occs = by_stmt d.Deps.dst in
    let arc_bset cstrs = Bset.make arc_space cstrs in
    (* Arcs NOT covered by candidate (os, k): the complement (within
       the relation) of the covered set. Coverage is established by
       intersecting the needed arcs with every candidate's bad set —
       set subtraction over the arc space explodes into complement
       products, intersection stays linear in the pieces and exits as
       soon as one candidate's bad set is empty (full coverage). *)
    let bad_set os od k =
      match prefix_proj ~m ~k ~exact:true ~cache:proj_cache os with
      | exception Fm.Inexact _ ->
          incr inexact;
          None
      | ps ->
          let pd = prefix_proj ~m ~k ~exact:false ~cache:proj_cache od in
          (* wide space [i; j; u(k)] *)
          let w3 = n_s + n_t + k in
          let sp3 =
            Space.set_space "arc_u"
              (names_of n_s "i" @ names_of n_t "j" @ names_of k "u")
          in
          let ps3 =
            remap w3
              (Array.init (k + n_s) (fun c ->
                   if c < k then n_s + n_t + c else c - k))
              ps
          in
          let pd3 =
            remap w3
              (Array.init (k + n_t) (fun c ->
                   if c < k then n_s + n_t + c else n_s + (c - k)))
              pd
          in
          let rel3 rel =
            remap w3 (Array.init (n_s + n_t) (fun c -> c)) rel.Bmap.cstrs
          in
          let to_arc piece = Bset.set_tuple piece "arc" in
          (* Arcs i -> j such that j executes at some shared block where
             i does not: the destination side may be over-approximated
             (more blocks to cover), the source side is exact. *)
          let bad_prefix =
            List.concat_map
              (fun rel ->
                let a = Bset.make sp3 (rel3 rel @ pd3) in
                let b = Bset.make sp3 ps3 in
                List.map
                  (fun piece ->
                    to_arc
                      (Bset.project_dims_approx piece ~first:(n_s + n_t)
                         ~count:k))
                  (Bset.subtract a b))
              rels
          in
          (* Arcs with a same-block execution pair ordered t >=lex t'
             beyond the block prefix: one disjunct per position pp where
             t and t' first differ (pp = m is the all-equal case). *)
          let w4 = n_s + n_t + (2 * m) in
          let sp4 =
            Space.set_space "arc_t"
              (names_of n_s "i" @ names_of n_t "j" @ names_of m "t"
             @ names_of m "s")
          in
          let s4 =
            remap w4
              (Array.init (m + n_s) (fun c ->
                   if c < m then n_s + n_t + c else c - m))
              os.oc_sys
          in
          let d4 =
            remap w4
              (Array.init (m + n_t) (fun c ->
                   if c < m then n_s + n_t + m + c else n_s + (c - m)))
              od.oc_sys
          in
          let rel4 rel =
            remap w4 (Array.init (n_s + n_t) (fun c -> c)) rel.Bmap.cstrs
          in
          let eq_at q =
            let row = Array.make w4 0 in
            row.(n_s + n_t + q) <- 1;
            row.(n_s + n_t + m + q) <- -1;
            Cstr.eq row 0
          in
          let strict_at q =
            (* t_q >= s_q + 1 *)
            let row = Array.make w4 0 in
            row.(n_s + n_t + q) <- 1;
            row.(n_s + n_t + m + q) <- -1;
            Cstr.ge row (-1)
          in
          (* A disjunct at first-difference position pp is decided
             without any emptiness test whenever the statically known
             time constants (sequence positions, textual order,
             padding) already refute one of its equalities or its
             strict inequality. *)
          let const_feasible pp =
            let eq_ok q =
              match (os.oc_consts.(q), od.oc_consts.(q)) with
              | Some a, Some b -> a = b
              | _ -> true
            in
            let rec eqs_ok q = q >= pp || (eq_ok q && eqs_ok (q + 1)) in
            eqs_ok k
            && (pp >= m
               ||
               match (os.oc_consts.(pp), od.oc_consts.(pp)) with
               | Some a, Some b -> a >= b + 1
               | _ -> true)
          in
          let bad_order =
            List.concat_map
              (fun rel ->
                List.filter_map
                  (fun pp ->
                    if not (const_feasible pp) then None
                    else begin
                      let eqs = List.init (pp - k) (fun q -> eq_at (k + q)) in
                      let strict = if pp < m then [ strict_at pp ] else [] in
                      let bs =
                        Bset.make sp4 (rel4 rel @ s4 @ d4 @ eqs @ strict)
                      in
                      if try Bset.is_empty bs with Fm.Inexact _ -> false then
                        None
                      else
                        Some
                          (to_arc
                             (Bset.project_dims_approx bs ~first:(n_s + n_t)
                                ~count:(2 * m)))
                    end)
                  (List.init (m - k + 1) (fun q -> k + q)))
              rels
          in
          Some
            (Iset.union (Iset.of_bsets bad_prefix) (Iset.of_bsets bad_order))
    in
    List.iter
      (fun od ->
        let execd = exec_dom ~m ~cache:exec_cache od in
        let needed =
          Iset.of_bsets
            (List.map
               (fun rel ->
                 arc_bset
                   (rel.Bmap.cstrs
                   @ remap (n_s + n_t)
                       (Array.init n_t (fun c -> n_s + c))
                       execd))
               rels)
        in
        (* Fast path: does candidate (os, k) alone cover every needed
           arc? Tested as emptiness of [needed /\ bad(os, k)] disjunct
           by disjunct on the unprojected systems — no Fourier-Motzkin
           projections, and exact (emptiness of an exists-quantified
           system is emptiness of its matrix). Negating one
           source-prefix constraint at a time enumerates the pieces of
           the bad-prefix complement. *)
        let needed_pieces = Iset.pieces needed in
        let covers_all os k =
          match prefix_proj ~m ~k ~exact:true ~cache:proj_cache os with
          | exception Fm.Inexact _ ->
              incr inexact;
              false
          | ps ->
              let pd = prefix_proj ~m ~k ~exact:false ~cache:proj_cache od in
              let w3 = n_s + n_t + k in
              let ps3 =
                remap w3
                  (Array.init (k + n_s) (fun c ->
                       if c < k then n_s + n_t + c else c - k))
                  ps
              in
              let pd3 =
                remap w3
                  (Array.init (k + n_t) (fun c ->
                       if c < k then n_s + n_t + c else n_s + (c - k)))
                  pd
              in
              let rel3 rel =
                remap w3 (Array.init (n_s + n_t) (fun c -> c)) rel.Bmap.cstrs
              in
              let np3 np =
                remap w3 (Array.init (n_s + n_t) (fun c -> c)) np.Bset.cstrs
              in
              (* negation of one constraint, as Ge rows (an equality
                 negates into two disjuncts) *)
              let negations (c : Cstr.t) =
                let flipped = Vec.scale (-1) c.Cstr.coef in
                match c.Cstr.kind with
                | Cstr.Ge -> [ Cstr.ge flipped (-c.Cstr.cst - 1) ]
                | Cstr.Eq ->
                    [ Cstr.ge c.Cstr.coef (c.Cstr.cst - 1);
                      Cstr.ge flipped (-c.Cstr.cst - 1)
                    ]
              in
              let prefix_ok =
                List.for_all
                  (fun rel ->
                    List.for_all
                      (fun np ->
                        List.for_all
                          (fun c ->
                            List.for_all
                              (fun nc ->
                                sys_empty_rational ~nvars:w3
                                  (nc :: rel3 rel @ pd3 @ np3 np))
                              (negations c))
                          ps3)
                      needed_pieces)
                  rels
              in
              prefix_ok
              &&
              let w4 = n_s + n_t + (2 * m) in
              let s4 =
                remap w4
                  (Array.init (m + n_s) (fun c ->
                       if c < m then n_s + n_t + c else c - m))
                  os.oc_sys
              in
              let d4 =
                remap w4
                  (Array.init (m + n_t) (fun c ->
                       if c < m then n_s + n_t + m + c else n_s + (c - m)))
                  od.oc_sys
              in
              let rel4 rel =
                remap w4 (Array.init (n_s + n_t) (fun c -> c)) rel.Bmap.cstrs
              in
              let np4 np =
                remap w4 (Array.init (n_s + n_t) (fun c -> c)) np.Bset.cstrs
              in
              let eq_at q =
                let row = Array.make w4 0 in
                row.(n_s + n_t + q) <- 1;
                row.(n_s + n_t + m + q) <- -1;
                Cstr.eq row 0
              in
              let strict_at q =
                let row = Array.make w4 0 in
                row.(n_s + n_t + q) <- 1;
                row.(n_s + n_t + m + q) <- -1;
                Cstr.ge row (-1)
              in
              let const_feasible pp =
                let eq_ok q =
                  match (os.oc_consts.(q), od.oc_consts.(q)) with
                  | Some a, Some b -> a = b
                  | _ -> true
                in
                let rec eqs_ok q = q >= pp || (eq_ok q && eqs_ok (q + 1)) in
                eqs_ok k
                && (pp >= m
                   ||
                   match (os.oc_consts.(pp), od.oc_consts.(pp)) with
                   | Some a, Some b -> a >= b + 1
                   | _ -> true)
              in
              List.for_all
                (fun rel ->
                  List.for_all
                    (fun np ->
                      List.for_all
                        (fun pp ->
                          (not (const_feasible pp))
                          ||
                          let eqs =
                            List.init (pp - k) (fun q -> eq_at (k + q))
                          in
                          let strict =
                            if pp < m then [ strict_at pp ] else []
                          in
                          sys_empty_rational ~nvars:w4
                            (rel4 rel @ np4 np @ s4 @ d4 @ eqs @ strict))
                        (List.init (m - k + 1) (fun q -> k + q)))
                    needed_pieces)
                rels
        in
        let remaining = ref needed in
        if not (Iset.is_empty !remaining) then begin
          let fully_covered =
            List.exists
              (fun os ->
                List.exists (fun k -> covers_all os k) (candidates os.o od.o))
              src_occs
          in
          if fully_covered then remaining := Iset.empty
          else
            List.iter
              (fun os ->
                List.iter
                  (fun k ->
                    if not (Iset.is_empty !remaining) then
                      match bad_set os od k with
                      | Some bad ->
                          remaining :=
                            Iset.coalesce (Iset.intersect !remaining bad)
                      | None -> ())
                  (candidates os.o od.o))
              src_occs;
          if not (Iset.is_empty !remaining) then begin
            let witness =
              match Iset.sample !remaining with
              | Some (_, pt) ->
                  Some (Array.sub pt 0 n_s, Array.sub pt n_s n_t)
              | None -> None
            in
            violations :=
              { vl_kind = kind_string d.Deps.kind;
                vl_src = d.Deps.src;
                vl_dst = d.Deps.dst;
                vl_array = d.Deps.array;
                vl_path = path_string od.o;
                vl_witness = witness;
                vl_detail =
                  Printf.sprintf
                    "%s dependence %s -> %s on %s: uncovered arcs at \
                     destination occurrence"
                    (kind_string d.Deps.kind) d.Deps.src d.Deps.dst
                    d.Deps.array
              }
              :: !violations
          end
        end)
      dst_occs
  in
  List.iter
    (fun d ->
      try check_dep d
      with Structural msg ->
        violations :=
          { vl_kind = "structural";
            vl_src = d.Deps.src;
            vl_dst = d.Deps.dst;
            vl_array = d.Deps.array;
            vl_path = "";
            vl_witness = None;
            vl_detail = msg
          }
          :: !violations)
    deps;
  (* Live-out completeness: every instance of a statement writing a
     live-out array must execute in some occurrence. *)
  List.iter
    (fun (st : Prog.stmt) ->
      if List.mem st.Prog.write.Prog.array p.Prog.live_out then begin
        let dom = Bset.bind_params st.Prog.domain params in
        let execs =
          Iset.of_bsets
            (List.map
               (fun oc ->
                 Bset.make (Bset.space dom)
                   (exec_dom ~m ~cache:exec_cache oc))
               (by_stmt st.Prog.stmt_name))
        in
        let missing = Iset.subtract (Iset.of_bset dom) execs in
        if not (Iset.is_empty missing) then
          violations :=
            { vl_kind = "liveout";
              vl_src = st.Prog.stmt_name;
              vl_dst = st.Prog.stmt_name;
              vl_array = st.Prog.write.Prog.array;
              vl_path = "";
              vl_witness =
                (match Iset.sample missing with
                | Some (_, pt) -> Some (pt, [||])
                | None -> None);
              vl_detail =
                Printf.sprintf
                  "live-out writer %s has instances never executed by the \
                   schedule"
                  st.Prog.stmt_name
            }
            :: !violations
      end)
    p.Prog.stmts;
  { rep_occurrences = List.length occs;
    rep_deps_checked = List.length deps;
    rep_violations = List.rev !violations;
    rep_inexact = !inexact
  }

let violation_string v =
  let witness =
    match v.vl_witness with
    | Some (i, j) ->
        let vec a =
          "[" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ "]"
        in
        if Array.length j = 0 then Printf.sprintf " witness %s" (vec i)
        else Printf.sprintf " witness %s -> %s" (vec i) (vec j)
    | None -> ""
  in
  Printf.sprintf "%s: %s%s%s" v.vl_kind v.vl_detail witness
    (if v.vl_path = "" then "" else "\n    at " ^ v.vl_path)

(* ------------------------------------------------------------------ *)
(* Reference schedule: textual order, identity bands                   *)
(* ------------------------------------------------------------------ *)

let naive_tree (p : Prog.t) =
  let domain =
    Iset.of_bsets (List.map (fun (s : Prog.stmt) -> s.Prog.domain) p.Prog.stmts)
  in
  let subtree (s : Prog.stmt) =
    let nd = Bset.n_dims s.Prog.domain in
    let body =
      if nd = 0 then Schedule_tree.Leaf
      else begin
        let dims = (Bset.space s.Prog.domain).Space.dims in
        let outs =
          List.init nd (fun i -> (dims.(i) ^ "t", Aff.dim i))
        in
        let bm =
          Bmap.intersect_domain
            (Bmap.from_affs ~in_tuple:s.Prog.stmt_name
               ~in_dims:(Array.to_list dims)
               ~out_tuple:(s.Prog.stmt_name ^ "_t") outs)
            s.Prog.domain
        in
        let band =
          Schedule_tree.mk_band ~partial:(Imap.of_bmap bm) ~permutable:true
            ~coincident:
              (Array.init nd (fun i -> i < nd - s.Prog.reduction_dims))
        in
        Schedule_tree.Band (band, Schedule_tree.Leaf)
      end
    in
    Schedule_tree.Filter (Iset.of_bset s.Prog.domain, body)
  in
  Schedule_tree.Domain
    (domain, Schedule_tree.Sequence (List.map subtree p.Prog.stmts))
