open Wl

type config = {
  max_stages : int;
  max_extent : int;
  allow_reductions : bool;
  allow_sampling : bool;
  two_d : bool;
}

let default_config =
  { max_stages = 6;
    max_extent = 24;
    allow_reductions = true;
    allow_sampling = true;
    two_d = true
  }

(* Seed behind the registry's "fuzz_pipeline" workload. Every consumer
   that compiles registry entries (bench snapshot, memcomp, tests) gets
   the same pipeline unless the seed is explicitly overridden, so fuzz
   snapshot counters reproduce run to run and machine to machine. *)
let registry_seed = ref 1

let set_registry_seed s = registry_seed := s

(* A deterministic LCG so failures reproduce from the seed alone. *)
type rng = { mutable state : int }

let rand rng bound =
  rng.state <- ((rng.state * 1103515245) + 12345) land max_int;
  (rng.state lsr 17) mod bound

let pick rng l = List.nth l (rand rng (List.length l))

type produced = { arr_name : string; ext : int array }

let generate cfg ~seed =
  assert (cfg.max_stages >= 2);
  let rng = { state = (seed * 2654435761) lor 1 } in
  let nd = if cfg.two_d then 2 else 1 in
  let t = Pipe.create (Printf.sprintf "fuzz%d" seed) ~params:[] in
  let e0 = 6 + rand rng (max 1 (cfg.max_extent - 5)) in
  let input = { arr_name = "IN"; ext = Array.make nd e0 } in
  Pipe.input t "IN" (List.map cst (Array.to_list input.ext));
  let produced = ref [ input ] in
  let n_stages = 2 + rand rng (cfg.max_stages - 1) in
  let stage_kinds =
    [ `Pointwise; `Pointwise; `Stencil; `Stencil ]
    @ (if cfg.allow_sampling then [ `Down; `Up ] else [])
    @ if cfg.allow_reductions then [ `Reduce ] else []
  in
  for k = 0 to n_stages - 1 do
    let src = pick rng !produced in
    let name = Printf.sprintf "s%d" k in
    let out = Printf.sprintf "A%d" k in
    let kf = float_of_int (k + 1) in
    let kind =
      (* sampling needs room to halve/double; stencils need margin *)
      let usable =
        List.filter
          (fun kd ->
            match kd with
            | `Down -> Array.for_all (fun e -> e >= 12) src.ext
            | `Stencil | `Reduce -> Array.for_all (fun e -> e >= 8) src.ext
            | `Up -> Array.for_all (fun e -> e * 2 <= 2 * cfg.max_extent) src.ext
            | `Pointwise -> true)
          stage_kinds
      in
      pick rng usable
    in
    let dims_idx = List.init nd (fun d -> d) in
    (match kind with
    | `Pointwise ->
        (* one or two source arrays, zero offsets over the min extents *)
        let src2 = pick rng !produced in
        let ext = Array.init nd (fun d -> min src.ext.(d) src2.ext.(d)) in
        Pipe.stage t ~name ~out
          ~extents:(List.map cst (Array.to_list ext))
          ~reads:
            [ (src.arr_name, List.map (fun d -> idx (dim d)) dims_idx);
              (src2.arr_name, List.map (fun d -> idx (dim d)) dims_idx)
            ]
          ~ops:2
          ~compute:(fun v -> (v.(0) *. 0.5) +. (v.(1) *. 0.25) +. kf)
          ();
        produced := { arr_name = out; ext } :: !produced
    | `Stencil ->
        let r = 1 + rand rng 2 in
        let ext = Array.map (fun e -> e - r) src.ext in
        let taps =
          List.init (r + 1) (fun o ->
              (src.arr_name, List.map (fun d -> idx (dim d +$ cst o)) dims_idx))
        in
        Pipe.stage t ~name ~out
          ~extents:(List.map cst (Array.to_list ext))
          ~reads:taps ~ops:(r + 1)
          ~compute:(fun v -> Array.fold_left ( +. ) kf v /. float_of_int (r + 2))
          ();
        produced := { arr_name = out; ext } :: !produced
    | `Down ->
        let a = rand rng 2 in
        let ext = Array.map (fun e -> (e - a) / 2) src.ext in
        Pipe.stage t ~name ~out
          ~extents:(List.map cst (Array.to_list ext))
          ~reads:
            [ (src.arr_name, List.map (fun d -> idx ((2 *$ dim d) +$ cst a)) dims_idx) ]
          ~ops:1
          ~compute:(fun v -> v.(0) +. kf)
          ();
        produced := { arr_name = out; ext } :: !produced
    | `Up ->
        let ext = Array.map (fun e -> e * 2) src.ext in
        Pipe.stage t ~name ~out
          ~extents:(List.map cst (Array.to_list ext))
          ~reads:[ (src.arr_name, List.map (fun d -> idx ~div:2 (dim d)) dims_idx) ]
          ~ops:1
          ~compute:(fun v -> v.(0) -. kf)
          ();
        produced := { arr_name = out; ext } :: !produced
    | `Reduce ->
        let r = 3 in
        let ext = Array.map (fun e -> e - r) src.ext in
        Pipe.reduction t ~name ~out
          ~extents:(List.map cst (Array.to_list ext))
          ~red_dims:[ ("rr", cst r) ]
          ~reads:
            [ ( src.arr_name,
                List.mapi
                  (fun i d ->
                    if i = 0 then idx (dim d +$ dim nd) else idx (dim d))
                  dims_idx )
            ]
          ~ops:2
          ~combine:(fun v -> v.(0) +. (v.(1) *. 0.125))
          ();
        produced := { arr_name = out; ext } :: !produced)
  done;
  let final = List.hd !produced in
  Pipe.finish t ~live_out:[ final.arr_name ]

let describe (p : Prog.t) =
  let kinds =
    List.map
      (fun (s : Prog.stmt) ->
        Printf.sprintf "%s(%d reads, %d dims%s)" s.Prog.stmt_name
          (List.length s.Prog.reads)
          (Presburger.Bset.n_dims s.Prog.domain)
          (if s.Prog.reduction_dims > 0 then ", red" else ""))
      p.Prog.stmts
  in
  Printf.sprintf "%s: %s" p.Prog.prog_name (String.concat " ; " kinds)
