open Wl

type config = {
  max_stages : int;
  max_extent : int;
  allow_reductions : bool;
  allow_sampling : bool;
  two_d : bool;
}

let default_config =
  { max_stages = 6;
    max_extent = 24;
    allow_reductions = true;
    allow_sampling = true;
    two_d = true
  }

(* Seed behind the registry's "fuzz_pipeline" workload. Every consumer
   that compiles registry entries (bench snapshot, memcomp, tests) gets
   the same pipeline unless the seed is explicitly overridden, so fuzz
   snapshot counters reproduce run to run and machine to machine. *)
let registry_seed = ref 1

let set_registry_seed s = registry_seed := s

(* A deterministic LCG so failures reproduce from the seed alone. *)
type rng = { mutable state : int }

let rand rng bound =
  rng.state <- ((rng.state * 1103515245) + 12345) land max_int;
  (rng.state lsr 17) mod bound

let pick rng l = List.nth l (rand rng (List.length l))

(* ------------------------------------------------------------------ *)
(* Pipeline specs                                                      *)
(* ------------------------------------------------------------------ *)

(* The generator is split in two: [spec_of_seed] makes every random
   decision and records it as a [spec]; [build_spec] deterministically
   lowers a spec to a program. [generate] composes the two, so the
   seeded behavior is unchanged — and the fuzz shrinker can minimize a
   failing spec (drop stages, reduce extents/radii, 2D -> 1D) while
   re-running the failure predicate on real rebuilt programs. *)

type stage_kind =
  | Pointwise of string  (** second source array *)
  | Stencil of int  (** radius *)
  | Down of int  (** alignment *)
  | Up
  | Reduce of int  (** radius *)

type stage = { sg_id : int; sg_kind : stage_kind; sg_src : string }

type spec = {
  sp_name : string;
  sp_nd : int;  (** 1 or 2 *)
  sp_input : int;  (** input extent, uniform across dims *)
  sp_stages : stage list;  (** the last stage's array is live-out *)
}

(* Per-array uniform extent, derived along the chain; [None] when some
   stage is infeasible (unknown source or non-positive extent). *)
let spec_extents sp =
  let derive exts st =
    match exts with
    | None -> None
    | Some exts -> (
        let find a = List.assoc_opt a exts in
        match find st.sg_src with
        | None -> None
        | Some e ->
            let out =
              match st.sg_kind with
              | Pointwise src2 -> (
                  match find src2 with Some e2 -> Some (min e e2) | None -> None)
              | Stencil r -> Some (e - r)
              | Down a -> Some ((e - a) / 2)
              | Up -> Some (e * 2)
              | Reduce r -> Some (e - r)
            in
            (match out with
            | Some o when o >= 1 ->
                Some ((Printf.sprintf "A%d" st.sg_id, o) :: exts)
            | _ -> None))
  in
  match List.fold_left derive (Some [ ("IN", sp.sp_input) ]) sp.sp_stages with
  | Some exts -> Some (List.rev exts)
  | None -> None

let spec_valid sp = sp.sp_stages <> [] && spec_extents sp <> None

let build_spec sp =
  let nd = sp.sp_nd in
  let exts =
    match spec_extents sp with
    | Some e -> e
    | None -> invalid_arg "Random_pipeline.build_spec: infeasible spec"
  in
  let ext_of a = List.assoc a exts in
  let t = Pipe.create sp.sp_name ~params:[] in
  Pipe.input t "IN" (List.init nd (fun _ -> cst sp.sp_input));
  let dims_idx = List.init nd (fun d -> d) in
  List.iter
    (fun st ->
      let name = Printf.sprintf "s%d" st.sg_id in
      let out = Printf.sprintf "A%d" st.sg_id in
      let kf = float_of_int (st.sg_id + 1) in
      let ext = ext_of out in
      let extents = List.init nd (fun _ -> cst ext) in
      match st.sg_kind with
      | Pointwise src2 ->
          Pipe.stage t ~name ~out ~extents
            ~reads:
              [ (st.sg_src, List.map (fun d -> idx (dim d)) dims_idx);
                (src2, List.map (fun d -> idx (dim d)) dims_idx)
              ]
            ~ops:2
            ~compute:(fun v -> (v.(0) *. 0.5) +. (v.(1) *. 0.25) +. kf)
            ()
      | Stencil r ->
          let taps =
            List.init (r + 1) (fun o ->
                (st.sg_src, List.map (fun d -> idx (dim d +$ cst o)) dims_idx))
          in
          Pipe.stage t ~name ~out ~extents ~reads:taps ~ops:(r + 1)
            ~compute:(fun v ->
              Array.fold_left ( +. ) kf v /. float_of_int (r + 2))
            ()
      | Down a ->
          Pipe.stage t ~name ~out ~extents
            ~reads:
              [ ( st.sg_src,
                  List.map (fun d -> idx ((2 *$ dim d) +$ cst a)) dims_idx )
              ]
            ~ops:1
            ~compute:(fun v -> v.(0) +. kf)
            ()
      | Up ->
          Pipe.stage t ~name ~out ~extents
            ~reads:[ (st.sg_src, List.map (fun d -> idx ~div:2 (dim d)) dims_idx) ]
            ~ops:1
            ~compute:(fun v -> v.(0) -. kf)
            ()
      | Reduce r ->
          Pipe.reduction t ~name ~out ~extents
            ~red_dims:[ ("rr", cst r) ]
            ~reads:
              [ ( st.sg_src,
                  List.mapi
                    (fun i d ->
                      if i = 0 then idx (dim d +$ dim nd) else idx (dim d))
                    dims_idx )
              ]
            ~ops:2
            ~combine:(fun v -> v.(0) +. (v.(1) *. 0.125))
            ())
    sp.sp_stages;
  let live_out =
    match List.rev sp.sp_stages with
    | last :: _ -> Printf.sprintf "A%d" last.sg_id
    | [] -> invalid_arg "Random_pipeline.build_spec: empty spec"
  in
  Pipe.finish t ~live_out:[ live_out ]

type produced = { arr_name : string; ext : int array }

(* Replays exactly the random decisions of the pre-spec generator (same
   rng call order), so [generate] is bit-identical seed for seed. *)
let spec_of_seed cfg ~seed =
  assert (cfg.max_stages >= 2);
  let rng = { state = (seed * 2654435761) lor 1 } in
  let nd = if cfg.two_d then 2 else 1 in
  let e0 = 6 + rand rng (max 1 (cfg.max_extent - 5)) in
  let input = { arr_name = "IN"; ext = Array.make nd e0 } in
  let produced = ref [ input ] in
  let n_stages = 2 + rand rng (cfg.max_stages - 1) in
  let stage_kinds =
    [ `Pointwise; `Pointwise; `Stencil; `Stencil ]
    @ (if cfg.allow_sampling then [ `Down; `Up ] else [])
    @ if cfg.allow_reductions then [ `Reduce ] else []
  in
  let stages = ref [] in
  for k = 0 to n_stages - 1 do
    let src = pick rng !produced in
    let out = Printf.sprintf "A%d" k in
    let kind =
      (* sampling needs room to halve/double; stencils need margin *)
      let usable =
        List.filter
          (fun kd ->
            match kd with
            | `Down -> Array.for_all (fun e -> e >= 12) src.ext
            | `Stencil | `Reduce -> Array.for_all (fun e -> e >= 8) src.ext
            | `Up -> Array.for_all (fun e -> e * 2 <= 2 * cfg.max_extent) src.ext
            | `Pointwise -> true)
          stage_kinds
      in
      pick rng usable
    in
    let sg_kind, ext =
      match kind with
      | `Pointwise ->
          (* one or two source arrays, zero offsets over the min extents *)
          let src2 = pick rng !produced in
          ( Pointwise src2.arr_name,
            Array.init nd (fun d -> min src.ext.(d) src2.ext.(d)) )
      | `Stencil ->
          let r = 1 + rand rng 2 in
          (Stencil r, Array.map (fun e -> e - r) src.ext)
      | `Down ->
          let a = rand rng 2 in
          (Down a, Array.map (fun e -> (e - a) / 2) src.ext)
      | `Up -> (Up, Array.map (fun e -> e * 2) src.ext)
      | `Reduce ->
          let r = 3 in
          (Reduce r, Array.map (fun e -> e - r) src.ext)
    in
    stages := { sg_id = k; sg_kind; sg_src = src.arr_name } :: !stages;
    produced := { arr_name = out; ext } :: !produced
  done;
  { sp_name = Printf.sprintf "fuzz%d" seed;
    sp_nd = nd;
    sp_input = e0;
    sp_stages = List.rev !stages
  }

let generate cfg ~seed = build_spec (spec_of_seed cfg ~seed)

let stage_kind_string = function
  | Pointwise src2 -> Printf.sprintf "Pointwise %S" src2
  | Stencil r -> Printf.sprintf "Stencil %d" r
  | Down a -> Printf.sprintf "Down %d" a
  | Up -> "Up"
  | Reduce r -> Printf.sprintf "Reduce %d" r

(* OCaml source form of a spec, for self-contained repro files. *)
let spec_to_ocaml sp =
  let stage st =
    Printf.sprintf
      "    { Random_pipeline.sg_id = %d; sg_kind = Random_pipeline.%s; \
       sg_src = %S }"
      st.sg_id (stage_kind_string st.sg_kind) st.sg_src
  in
  Printf.sprintf
    "{ Random_pipeline.sp_name = %S;\n  sp_nd = %d;\n  sp_input = %d;\n\
    \  sp_stages =\n  [\n%s\n  ] }"
    sp.sp_name sp.sp_nd sp.sp_input
    (String.concat ";\n" (List.map stage sp.sp_stages))

let describe (p : Prog.t) =
  let kinds =
    List.map
      (fun (s : Prog.stmt) ->
        Printf.sprintf "%s(%d reads, %d dims%s)" s.Prog.stmt_name
          (List.length s.Prog.reads)
          (Presburger.Bset.n_dims s.Prog.domain)
          (if s.Prog.reduction_dims > 0 then ", red" else ""))
      p.Prog.stmts
  in
  Printf.sprintf "%s: %s" p.Prog.prog_name (String.concat " ; " kinds)
