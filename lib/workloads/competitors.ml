open Presburger

(* Dilate one extension piece by [delta]: every inequality touching the
   statement (output) dimensions is loosened, equalities are split into
   a +/- delta band, and the result is clipped to the statement domain. *)
let dilate_piece (p : Prog.t) delta piece =
  let sp = Bmap.space piece in
  let np = Bmap.n_params piece and ni = Bmap.n_in piece and no = Bmap.n_out piece in
  (* only constraints coupling the tile coordinates with the statement
     instances (the per-tile overlap region) are loosened; global domain
     bounds stay exact, as PolyMage's clamping does. *)
  let touches_out (c : Cstr.t) =
    let rec go j = j < no && (c.Cstr.coef.(np + ni + j) <> 0 || go (j + 1)) in
    go 0
  in
  let touches_in (c : Cstr.t) =
    let rec go j = j < ni && (c.Cstr.coef.(np + j) <> 0 || go (j + 1)) in
    go 0
  in
  let cstrs =
    List.concat_map
      (fun (c : Cstr.t) ->
        if not (touches_out c && touches_in c) then [ c ]
        else
          match c.Cstr.kind with
          | Cstr.Ge -> [ { c with cst = c.Cstr.cst + delta } ]
          | Cstr.Eq ->
              [ { c with kind = Cstr.Ge; cst = c.Cstr.cst + delta };
                { Cstr.kind = Cstr.Ge;
                  coef = Vec.scale (-1) c.Cstr.coef;
                  cst = -c.Cstr.cst + delta
                }
              ])
      piece.Bmap.cstrs
  in
  let dilated = Bmap.make sp cstrs in
  let stmt = Prog.find_stmt p sp.Space.out_tuple in
  Bmap.intersect_range dilated stmt.Prog.domain

(* Per-extension dilation deltas. A dilated consumer region reads
   [delta_c] beyond its exact needs, and the producer's exact piece
   covers exactly those needs — so soundness requires
   [delta_producer >= delta_consumer] along every derivation chain.
   [parents] lists the downstream spaces an extension was derived
   through, so the longest-path depth over that DAG (consumer-first,
   live-out depth 0) yields strictly growing deltas towards the
   producers, mirroring PolyMage's overlap growth with stage depth.
   The old [length parents] proxy violated the ordering on diamond
   DAGs (camera_pipeline: the g_at_b producer got a smaller delta than
   its g_avg consumer), leaving fringe instances reading cells no tile
   had written yet — caught by [Legality.check]/[Shadow.validate]. *)
let dilation_deltas (extensions : Core.Tile_shapes.extension list) =
  let depth = Hashtbl.create 8 in
  List.iter
    (fun (e : Core.Tile_shapes.extension) ->
      let d =
        1
        + List.fold_left
            (fun acc q ->
              max acc
                (if q = -1 then 0
                 else Option.value ~default:0 (Hashtbl.find_opt depth q)))
            0 e.Core.Tile_shapes.parents
      in
      Hashtbl.replace depth e.Core.Tile_shapes.space_id d)
    (List.rev extensions);
  (* extensions are producer-first; reversed = consumer-first *)
  fun (e : Core.Tile_shapes.extension) ->
    Option.value ~default:1 (Hashtbl.find_opt depth e.Core.Tile_shapes.space_id)

let dilate_extension (p : Prog.t) ~delta (e : Core.Tile_shapes.extension) =
  { e with
    Core.Tile_shapes.ext_rel =
      Imap.of_bmaps
        (List.map (dilate_piece p delta) (Imap.pieces e.Core.Tile_shapes.ext_rel))
  }

let polymage (c : Core.Pipeline.compiled) =
  let p = c.Core.Pipeline.prog in
  let plan = c.Core.Pipeline.plan in
  let roots =
    List.map
      (fun (r : Core.Post_tiling.root) ->
        let t = r.Core.Post_tiling.tiling in
        let delta_of = dilation_deltas t.Core.Tile_shapes.extensions in
        { r with
          Core.Post_tiling.tiling =
            { t with
              Core.Tile_shapes.extensions =
                List.map
                  (fun e -> dilate_extension p ~delta:(delta_of e) e)
                  t.Core.Tile_shapes.extensions
            }
        })
      plan.Core.Post_tiling.roots
  in
  let plan = { plan with Core.Post_tiling.roots } in
  let tree = Core.Post_tiling.to_tree p ~spaces:c.Core.Pipeline.spaces plan in
  { c with Core.Pipeline.plan; tree }

let halide ?tile_size ~fused_stages ~target prog =
  let fusable (s : Core.Spaces.t) =
    List.for_all fused_stages s.Core.Spaces.group.Fusion.stmts
  in
  Core.Pipeline.run ?tile_size ~fusable ~target prog

(* Manual-schedule fusion decisions per benchmark, following the
   published Halide schedules at our stage granularity. *)
let halide_fused_stages prog_name stage =
  match prog_name with
  | "unsharp_mask" -> true (* all stages computed at the output tile *)
  | "harris" ->
      (* the manual schedule computes the gradient products inline but
         leaves gray/sobel/sums at root (the inlining the paper says
         Halide missed) *)
      List.mem stage [ "ixx"; "ixy"; "iyy"; "det" ]
  | "bilateral_grid" ->
      (* the grid blurs are fused into slicing; grid construction at root *)
      List.mem stage [ "blurz"; "blurx"; "blury" ]
  | "camera_pipeline" ->
      (* demosaic interpolation and color stages fused; deinterleave and
         denoise at root *)
      not
        (List.mem stage [ "denoise"; "gr"; "rr"; "bb"; "gb" ])
  | "local_laplacian" ->
      (* pyramids at root, per-level blends and collapse fused *)
      (String.length stage >= 5 && String.sub stage 0 5 = "blend")
      || (String.length stage >= 3 && String.sub stage 0 3 = "col")
      || (String.length stage >= 5 && String.sub stage 0 5 = "remap")
  | "multiscale_interp" ->
      (* down-sampling chain at root, up-sampling chain fused *)
      (String.length stage >= 2 && String.sub stage 0 2 = "up")
      || (String.length stage >= 4 && String.sub stage 0 4 = "comb")
      || stage = "norm"
  | _ -> true
