type entry = {
  reg_name : string;
  description : string;
  build : unit -> Prog.t;
  small : unit -> Prog.t;
}

let all =
  [ { reg_name = "conv2d";
      description = "the paper's Fig. 1 running example (quant/conv/ReLU)";
      build = (fun () -> Conv2d.build ~h:128 ~w:128 ());
      small = (fun () -> Conv2d.build ~h:16 ~w:16 ())
    };
    { reg_name = "unsharp_mask";
      description = "PolyMage: unsharp mask (4 stages)";
      build = (fun () -> Polymage.unsharp_mask ~h:128 ~w:128 ());
      small = (fun () -> Polymage.unsharp_mask ~h:32 ~w:32 ())
    };
    { reg_name = "harris";
      description = "PolyMage: Harris corner detection (11 stages)";
      build = (fun () -> Polymage.harris ~h:128 ~w:128 ());
      small = (fun () -> Polymage.harris ~h:32 ~w:32 ())
    };
    { reg_name = "bilateral_grid";
      description = "PolyMage: bilateral grid (reduction + blurs + slice)";
      build = (fun () -> Polymage.bilateral_grid ~h:128 ~w:128 ());
      small = (fun () -> Polymage.bilateral_grid ~h:64 ~w:64 ())
    };
    { reg_name = "camera_pipeline";
      description = "PolyMage: camera pipeline (32 stages)";
      build = (fun () -> Polymage.camera_pipeline ~h2:64 ~w2:64 ());
      small = (fun () -> Polymage.camera_pipeline ~h2:24 ~w2:24 ())
    };
    { reg_name = "local_laplacian";
      description = "PolyMage: local Laplacian filter (pyramids)";
      build = (fun () -> Polymage.local_laplacian ~h:128 ~w:128 ~levels:4 ~bins:8 ());
      small = (fun () -> Polymage.local_laplacian ~h:64 ~w:64 ~levels:2 ~bins:2 ())
    };
    { reg_name = "multiscale_interp";
      description = "PolyMage: multiscale interpolation (pyramid chain)";
      build = (fun () -> Polymage.multiscale_interp ~h:128 ~w:128 ~levels:5 ());
      small = (fun () -> Polymage.multiscale_interp ~h:32 ~w:32 ~levels:2 ())
    };
    { reg_name = "equake";
      description = "SPEC CPU2000 equake (sparse FEM with dynamic counted loop)";
      build = (fun () -> Equake.build ~size:Equake.Train ());
      small = (fun () -> Equake.build ~size:Equake.Test ())
    };
    { reg_name = "2mm";
      description = "PolyBench: two chained matrix multiplications";
      build = (fun () -> Polybench.mm2 ~ni:96 ~nj:96 ~nk:96 ~nl:96 ());
      small = (fun () -> Polybench.mm2 ~ni:20 ~nj:20 ~nk:20 ~nl:20 ())
    };
    { reg_name = "gemver";
      description = "PolyBench: vector multiplications and matrix-vector products";
      build = (fun () -> Polybench.gemver ~n:256 ());
      small = (fun () -> Polybench.gemver ~n:32 ())
    };
    { reg_name = "covariance";
      description = "PolyBench: covariance of data samples";
      build = (fun () -> Polybench.covariance ~n:128 ~m:96 ());
      small = (fun () -> Polybench.covariance ~n:24 ~m:16 ())
    };
    { reg_name = "jacobi_unrolled";
      description = "time-unrolled Jacobi stencil (Section IV-D: concurrent start)";
      build = (fun () -> Jacobi.build ~n:4096 ~steps:6 ());
      small = (fun () -> Jacobi.build ~n:64 ~steps:3 ())
    };
    { reg_name = "fuzz_pipeline";
      description =
        "random pipeline from the differential-testing generator \
         (deterministic in Random_pipeline.registry_seed; --seed N)";
      build =
        (fun () ->
          Random_pipeline.generate
            { Random_pipeline.default_config with
              Random_pipeline.max_stages = 8;
              Random_pipeline.max_extent = 40
            }
            ~seed:!Random_pipeline.registry_seed);
      small =
        (fun () ->
          Random_pipeline.generate Random_pipeline.default_config
            ~seed:!Random_pipeline.registry_seed)
    };
    { reg_name = "resnet50";
      description = "ResNet-50 forward layer chain (NPU workload)";
      build = (fun () -> Resnet.build ());
      small =
        (fun () ->
          Resnet.build
            ~blocks:
              (match Resnet.default_blocks () with
              | a :: b :: _ -> [ a; b ]
              | l -> l)
            ())
    }
  ]

let names = List.map (fun e -> e.reg_name) all

let find name =
  match List.find_opt (fun e -> e.reg_name = name) all with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown workload %s (available: %s)" name
           (String.concat ", " names))
