(** Random pipeline generator for differential testing.

    Generates small but structurally diverse programs — random DAGs of
    pointwise, stencil, down-sampling, up-sampling and reduction stages
    over 1D/2D arrays — used by the fuzzing suite to check that every
    compilation flow (all heuristics, the PolyMage/Halide strategy
    models and the paper's post-tiling fusion) computes the same
    live-out values as the untransformed program. *)

type config = {
  max_stages : int;  (** upper bound on generated stages (>= 2) *)
  max_extent : int;  (** array extents drawn from [6, max_extent] *)
  allow_reductions : bool;
  allow_sampling : bool;  (** down/up-sampling (floor-division) stages *)
  two_d : bool;  (** 2D arrays (otherwise 1D) *)
}

val default_config : config

val registry_seed : int ref
(** Seed used by the registry's ["fuzz_pipeline"] workload (default 1).
    Override with [--seed N] on [bench/main.exe snapshot] (or
    {!set_registry_seed}) so fuzz-workload snapshot counters are
    reproducible; the seed in effect is recorded in failure messages. *)

val set_registry_seed : int -> unit

val generate : config -> seed:int -> Prog.t
(** Deterministic in [seed]. The final stage's array is live-out; every
    stage reads one or two previously generated arrays with random
    in-bounds offsets. *)

val describe : Prog.t -> string
(** One-line structural summary (for failure messages). *)
