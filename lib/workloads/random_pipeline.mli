(** Random pipeline generator for differential testing.

    Generates small but structurally diverse programs — random DAGs of
    pointwise, stencil, down-sampling, up-sampling and reduction stages
    over 1D/2D arrays — used by the fuzzing suite to check that every
    compilation flow (all heuristics, the PolyMage/Halide strategy
    models and the paper's post-tiling fusion) computes the same
    live-out values as the untransformed program. *)

type config = {
  max_stages : int;  (** upper bound on generated stages (>= 2) *)
  max_extent : int;  (** array extents drawn from [6, max_extent] *)
  allow_reductions : bool;
  allow_sampling : bool;  (** down/up-sampling (floor-division) stages *)
  two_d : bool;  (** 2D arrays (otherwise 1D) *)
}

val default_config : config

val registry_seed : int ref
(** Seed used by the registry's ["fuzz_pipeline"] workload (default 1).
    Override with [--seed N] on [bench/main.exe snapshot] (or
    {!set_registry_seed}) so fuzz-workload snapshot counters are
    reproducible; the seed in effect is recorded in failure messages. *)

val set_registry_seed : int -> unit

(** {2 Pipeline specs}

    The generator is split into decision making ([spec_of_seed]) and
    deterministic lowering ([build_spec]); [generate] composes them.
    The spec is the unit the fuzz shrinker minimizes: stages can be
    dropped and extents/radii reduced while [build_spec] re-lowers the
    result to a real program for the failure predicate. *)

type stage_kind =
  | Pointwise of string  (** second source array *)
  | Stencil of int  (** radius *)
  | Down of int  (** alignment *)
  | Up
  | Reduce of int  (** radius *)

type stage = { sg_id : int; sg_kind : stage_kind; sg_src : string }
(** Stage [sg_id] writes array ["A<id>"] via statement ["s<id>"],
    reading [sg_src] (and the second source of a pointwise stage). *)

type spec = {
  sp_name : string;
  sp_nd : int;  (** 1 or 2 *)
  sp_input : int;  (** input extent, uniform across dims *)
  sp_stages : stage list;  (** the last stage's array is live-out *)
}

val spec_of_seed : config -> seed:int -> spec
(** Every random decision of the generator, recorded. *)

val build_spec : spec -> Prog.t
(** Deterministic lowering; raises [Invalid_argument] on an infeasible
    spec (see {!spec_valid}). *)

val spec_valid : spec -> bool
(** Non-empty, every stage source exists earlier in the chain, and all
    derived extents stay positive. *)

val spec_extents : spec -> (string * int) list option
(** Derived per-array uniform extents, or [None] when infeasible. *)

val spec_to_ocaml : spec -> string
(** OCaml source form of the spec, for self-contained repro files. *)

val generate : config -> seed:int -> Prog.t
(** [build_spec (spec_of_seed cfg ~seed)]. Deterministic in [seed]. The
    final stage's array is live-out; every stage reads one or two
    previously generated arrays with random in-bounds offsets. *)

val describe : Prog.t -> string
(** One-line structural summary (for failure messages). *)
