open Presburger

type heuristic = Minfuse | Smartfuse | Maxfuse | Hybridfuse

let heuristic_name = function
  | Minfuse -> "minfuse"
  | Smartfuse -> "smartfuse"
  | Maxfuse -> "maxfuse"
  | Hybridfuse -> "hybridfuse"

type group = {
  stmts : string list;
  band_dims : int;
  shifts : (string * int array) list;
  permutable : bool;
  coincident : bool array;
  serialized : bool;
}

type result = { groups : group list; search_steps : int; budget_exceeded : bool }

let n_parallel g =
  if g.serialized then 0
  else begin
    let rec go i =
      if i >= Array.length g.coincident || not g.coincident.(i) then i
      else go (i + 1)
    in
    go 0
  end

(* ------------------------------------------------------------------ *)
(* Dependence distance bounds per band dimension                       *)
(* ------------------------------------------------------------------ *)

(* All dependence pieces between two statements of a candidate group,
   with distance bounds on each of the first [band_dims] dimensions.
   Distances are only meaningful on dims shared by both statements. *)
type edge = { e_src : string; e_dst : string; bounds : (int option * int option) array }

let edges_of (p : Prog.t) ~(deps : Deps.t list) ~band_dims stmts =
  let in_group s = List.mem s stmts in
  List.concat_map
    (fun (d : Deps.t) ->
      if in_group d.Deps.src && in_group d.Deps.dst then
        List.map
          (fun piece ->
            let bounds =
              Array.init band_dims (fun dim ->
                  Deps.delta_bounds p piece ~src_dim:dim ~dst_dim:dim)
            in
            { e_src = d.Deps.src; e_dst = d.Deps.dst; bounds })
          (Imap.pieces d.Deps.rel)
      else [])
    deps

(* Minimal non-negative shifts satisfying, for every edge and dim,
   lo + shift(dst) - shift(src) >= 0. Difference-constraint solving by
   Bellman-Ford. Returns None when unbounded distances or a positive
   cycle make constant shifting impossible. *)
let solve_shifts ~band_dims ~stmts edges =
  let n = List.length stmts in
  let index s =
    match List.find_index (( = ) s) stmts with
    | Some i -> i
    | None -> assert false
  in
  let shift = Array.make_matrix n band_dims 0 in
  let feasible = ref true in
  for dim = 0 to band_dims - 1 do
    if !feasible then begin
      (* self edges: no shift can fix a negative self distance *)
      List.iter
        (fun e ->
          if e.e_src = e.e_dst then
            match fst e.bounds.(dim) with
            | Some lo when lo < 0 -> feasible := false
            | Some _ -> ()
            | None -> feasible := false)
        edges;
      let changed = ref true and rounds = ref 0 in
      while !feasible && !changed do
        changed := false;
        incr rounds;
        if !rounds > n + 1 then feasible := false
        else
          List.iter
            (fun e ->
              if e.e_src <> e.e_dst then
                match fst e.bounds.(dim) with
                | None -> feasible := false
                | Some lo ->
                    let s = index e.e_src and d = index e.e_dst in
                    if shift.(d).(dim) < shift.(s).(dim) - lo then begin
                      shift.(d).(dim) <- shift.(s).(dim) - lo;
                      changed := true
                    end)
            edges
      done
    end
  done;
  if not !feasible then None
  else begin
    (* normalize to non-negative with minimum zero per dim *)
    for dim = 0 to band_dims - 1 do
      let m = ref max_int in
      for i = 0 to n - 1 do
        m := min !m shift.(i).(dim)
      done;
      if n > 0 then
        for i = 0 to n - 1 do
          shift.(i).(dim) <- shift.(i).(dim) - !m
        done
    done;
    Some (List.mapi (fun i s -> (s, Array.copy shift.(i))) stmts)
  end

let attributes ~band_dims ~shifts edges =
  let shift_of s = List.assoc s shifts in
  let permutable = ref true in
  let coincident = Array.make band_dims true in
  List.iter
    (fun e ->
      let ss = shift_of e.e_src and sd = shift_of e.e_dst in
      for dim = 0 to band_dims - 1 do
        let adj = sd.(dim) - ss.(dim) in
        (match fst e.bounds.(dim) with
        | Some lo ->
            if lo + adj < 0 then permutable := false;
            if lo + adj <> 0 then coincident.(dim) <- false
        | None ->
            permutable := false;
            coincident.(dim) <- false);
        match snd e.bounds.(dim) with
        | Some hi -> if hi + adj <> 0 then coincident.(dim) <- false
        | None -> coincident.(dim) <- false
      done)
    edges;
  (!permutable, coincident)

let max_band_dims (p : Prog.t) stmts =
  let d =
    List.fold_left
      (fun acc s -> min acc (Bset.n_dims (Prog.find_stmt p s).Prog.domain))
      max_int stmts
  in
  if d = max_int then 0 else d

let group_of_stmts ?band_dims (p : Prog.t) ~deps stmts =
  let band_dims =
    match band_dims with Some d -> d | None -> max_band_dims p stmts
  in
  let edges = edges_of p ~deps ~band_dims stmts in
  match solve_shifts ~band_dims ~stmts edges with
  | Some shifts ->
      let permutable, coincident = attributes ~band_dims ~shifts edges in
      { stmts; band_dims; shifts; permutable; coincident; serialized = false }
  | None ->
      (* cannot align by constant shifts: keep the group but serialize *)
      { stmts;
        band_dims;
        shifts = List.map (fun s -> (s, Array.make band_dims 0)) stmts;
        permutable = false;
        coincident = Array.make band_dims false;
        serialized = true
      }

(* ------------------------------------------------------------------ *)
(* Heuristics                                                          *)
(* ------------------------------------------------------------------ *)

(* Is there a producer-consumer relation between the two groups? *)
let connected deps g1 g2 =
  List.exists
    (fun (d : Deps.t) ->
      d.Deps.kind = Deps.Raw
      && List.mem d.Deps.src g1.stmts
      && List.mem d.Deps.dst g2.stmts)
    deps

(* maxfuse models the exponential blow-up of aggressive ILP-based fusion:
   it validates its shifts by exhaustively enumerating candidate shift
   vectors before falling back to the difference-constraint solution.
   The enumeration honestly explores (shift range)^(stmts * dims)
   candidates, counted against [max_steps]. *)
let maxfuse_search ~max_steps ~steps ~band_dims candidate edges =
  let n = List.length candidate.stmts in
  let range = 4 in
  let dims = band_dims * n in
  let vec = Array.make dims 0 in
  let shift_of =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i s -> Hashtbl.add tbl s i) candidate.stmts;
    fun s -> Hashtbl.find tbl s
  in
  let valid () =
    List.for_all
      (fun e ->
        let si = shift_of e.e_src and di = shift_of e.e_dst in
        let ok = ref true in
        for dim = 0 to band_dims - 1 do
          let adj = vec.((di * band_dims) + dim) - vec.((si * band_dims) + dim) in
          match fst e.bounds.(dim) with
          | Some lo -> if lo + adj < 0 then ok := false
          | None -> ok := false
        done;
        !ok)
      edges
  in
  let exceeded = ref false in
  let rec enum k =
    if !steps > max_steps then begin
      exceeded := true;
      false
    end
    else if k = dims then begin
      incr steps;
      valid ()
    end
    else begin
      let found = ref false in
      let v = ref 0 in
      while (not !found) && !v <= range && not !exceeded do
        vec.(k) <- !v;
        if enum (k + 1) then found := true;
        incr v
      done;
      !found
    end
  in
  let _found = enum 0 in
  !exceeded

let guarded_write_arrays (p : Prog.t) stmts =
  List.filter_map
    (fun s ->
      let st = Prog.find_stmt p s in
      if st.Prog.guard <> None then Some st.Prog.write.Prog.array else None)
    stmts

let accesses_any (p : Prog.t) stmt arrays =
  let st = Prog.find_stmt p stmt in
  List.mem st.Prog.write.Prog.array arrays
  || List.exists (fun (r : Prog.access) -> List.mem r.Prog.array arrays) st.Prog.reads

(* Dynamic-counted (while-style) nests restrict fusion: the conservative
   heuristics only fuse a guarded group with statements touching the
   guarded statement's accumulator (the components of the same sparse
   computation); the aggressive heuristic treats the dynamic nest as an
   unfusable black box, exactly the behaviour the paper reports for
   PPCG on equake. *)
let guard_merge_ok (p : Prog.t) heuristic stmts_a stmts_b =
  let all = stmts_a @ stmts_b in
  let garr = guarded_write_arrays p all in
  if garr = [] then true
  else
    match heuristic with
    | Maxfuse ->
        (* the aggressive heuristic only keeps the dynamic nest's own
           writers together (initialization + while-loop reduction); any
           consumer is pushed into the downstream groups instead *)
        List.for_all
          (fun s -> List.mem (Prog.find_stmt p s).Prog.write.Prog.array garr)
          all
    | Minfuse | Smartfuse | Hybridfuse ->
        List.for_all (fun s -> accesses_any p s garr) all

(* Merge adjacent atoms that share an imperfect-nest tag: the start-up
   grouping never splits an original loop nest. *)
let merge_nest_atoms (p : Prog.t) atoms =
  let nests stmts =
    List.sort_uniq compare (List.map (fun s -> (Prog.find_stmt p s).Prog.nest) stmts)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | atom :: rest -> (
        match acc with
        | prev :: acc_rest
          when List.exists (fun n -> List.mem n (nests prev)) (nests atom) ->
            go ((prev @ atom) :: acc_rest) rest
        | _ -> go (atom :: acc) rest)
  in
  go [] atoms

let schedule ?(max_steps = 2_000_000) ?(fuse_reductions = true) (p : Prog.t)
    ~deps ~target_parallelism heuristic =
  Obs.span "fusion.schedule" @@ fun () ->
  if Log.would_log Log.Debug then
    Log.debug ~cat:"fusion" "schedule.begin"
      [ ("prog", Json_util.S p.Prog.prog_name);
        ("heuristic", Json_util.S (heuristic_name heuristic));
        ("target_parallelism", Json_util.I target_parallelism)
      ];
  let steps = ref 0 in
  let budget_exceeded = ref false in
  let atoms = merge_nest_atoms p (Deps.sccs p deps) in
  let atom_groups =
    List.map
      (fun stmts ->
        steps := !steps + List.length stmts;
        group_of_stmts p ~deps stmts)
      atoms
  in
  (* [try_merge] returns the fused candidate or, on rejection, the
     failing predicate plus any diagnostic attributes -- both feed the
     decision-trace events consumed by [memcomp explain]. *)
  let try_merge prev g =
    Obs.count "fusion.merge_attempts";
    let stmts = prev.stmts @ g.stmts in
    steps := !steps + (List.length stmts * List.length stmts);
    match heuristic with
    | Minfuse -> Error ("minfuse_policy", [])
    | _ when not (guard_merge_ok p heuristic prev.stmts g.stmts) ->
        Error ("guard_barrier", [])
    | Smartfuse | Hybridfuse ->
        if not (connected deps prev g) then Error ("not_connected", [])
        else if
          (not fuse_reductions)
          && List.exists
               (fun st -> (Prog.find_stmt p st).Prog.reduction_dims > 0)
               prev.stmts
        then
          (* models the isl/AKG smartfuse behaviour on the NPU: a group
             carrying a reduction is not fused with its consumers
             (Table III: "smartfuse failed to fuse convolutions and
             batch normalizations") *)
          Error ("reduction_barrier", [])
        else begin
          (* Fuse on the deepest shared band that keeps the group
             permutable and parallel enough; shrinking the band models
             outer-level-only fusion (e.g. 2mm fuses on i alone). *)
          let max_bd = max_band_dims p stmts in
          let deepest = ref [] in
          let rec attempt bd =
            if bd < 1 then
              Error
                ( "no_legal_band",
                  ("band_dims_tried", Events.I max_bd) :: !deepest )
            else begin
              steps := !steps + List.length stmts;
              let candidate = group_of_stmts ~band_dims:bd p ~deps stmts in
              if bd = max_bd then
                deepest :=
                  [ ("serialized", Events.B candidate.serialized);
                    ("permutable", Events.B candidate.permutable);
                    ("parallel_dims", Events.I (n_parallel candidate));
                    ("target_parallelism", Events.I target_parallelism)
                  ];
              if
                (not candidate.serialized)
                && candidate.permutable
                && n_parallel candidate >= target_parallelism
              then Ok candidate
              else attempt (bd - 1)
            end
          in
          attempt max_bd
        end
    | Maxfuse ->
        let candidate = group_of_stmts p ~deps stmts in
        let edges =
          edges_of p ~deps ~band_dims:candidate.band_dims candidate.stmts
        in
        let exceeded =
          maxfuse_search ~max_steps ~steps ~band_dims:candidate.band_dims
            candidate edges
        in
        if exceeded then budget_exceeded := true;
        Ok candidate
  in
  let decision_base prev g =
    [ ("heuristic", Events.S (heuristic_name heuristic));
      ("prev", Events.S (String.concat "+" prev.stmts));
      ("next", Events.S (String.concat "+" g.stmts))
    ]
  in
  let groups =
    match heuristic with
    | Minfuse -> atom_groups
    | _ ->
        List.fold_left
          (fun acc g ->
            match acc with
            | [] -> [ g ]
            | prev :: rest -> (
                match try_merge prev g with
                | Ok merged ->
                    Obs.count "fusion.fuse_accept";
                    Events.emit ~cat:"fusion" "fusion.accept"
                      (decision_base prev g
                      @ [ ("band_dims", Events.I merged.band_dims);
                          ("parallel_dims", Events.I (n_parallel merged))
                        ]);
                    merged :: rest
                | Error (reason, details) ->
                    Obs.count "fusion.fuse_reject";
                    Events.emit ~cat:"fusion" "fusion.reject"
                      (decision_base prev g
                      @ (("reason", Events.S reason) :: details));
                    g :: prev :: rest))
          [] atom_groups
        |> List.rev
  in
  Obs.add "fusion.search_steps" !steps;
  Obs.add "fusion.groups" (List.length groups);
  { groups; search_steps = !steps; budget_exceeded = !budget_exceeded }
