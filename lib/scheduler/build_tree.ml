open Presburger

let band_name g = Printf.sprintf "b%d" g

let stmt_filter (p : Prog.t) stmts =
  Iset.of_bsets
    (List.map (fun s -> (Prog.find_stmt p s).Prog.domain) stmts)

(* Piece of a group band for one statement: dims -> band dims with the
   group's shifts, restricted to the statement's domain. *)
let band_piece (p : Prog.t) (g : Fusion.group) ~name stmt_name =
  let stmt = Prog.find_stmt p stmt_name in
  let shift = List.assoc stmt_name g.Fusion.shifts in
  let dims = (Bset.space stmt.Prog.domain).Space.dims in
  let outs =
    List.init g.Fusion.band_dims (fun d ->
        (Printf.sprintf "t%d" d, Aff.add_const (Aff.dim d) shift.(d)))
  in
  let m =
    Bmap.from_affs ~in_tuple:stmt_name
      ~in_dims:(Array.to_list dims)
      ~out_tuple:name outs
  in
  Bmap.intersect_domain m stmt.Prog.domain

let group_band (p : Prog.t) (g : Fusion.group) ~name =
  let pieces = List.map (band_piece p g ~name) g.Fusion.stmts in
  Schedule_tree.mk_band
    ~partial:(Imap.of_bmaps pieces)
    ~permutable:g.Fusion.permutable
    ~coincident:(Array.copy g.Fusion.coincident)

(* Inner band of one statement: identity schedule on the dimensions that
   lie below the group band. Coincidence reflects the statement's own
   reduction dimensions. *)
let inner_of_stmt (p : Prog.t) (g : Fusion.group) stmt_name =
  let stmt = Prog.find_stmt p stmt_name in
  let nd = Bset.n_dims stmt.Prog.domain in
  let bd = g.Fusion.band_dims in
  if nd <= bd then Schedule_tree.Leaf
  else begin
    let dims = (Bset.space stmt.Prog.domain).Space.dims in
    let outs =
      List.init (nd - bd) (fun i -> (dims.(bd + i) ^ "p", Aff.dim (bd + i)))
    in
    let m =
      Bmap.from_affs ~in_tuple:stmt_name
        ~in_dims:(Array.to_list dims)
        ~out_tuple:(stmt_name ^ "_inner") outs
    in
    let m = Bmap.intersect_domain m stmt.Prog.domain in
    let coincident =
      Array.init (nd - bd) (fun i -> bd + i < nd - stmt.Prog.reduction_dims)
    in
    let band =
      Schedule_tree.mk_band ~partial:(Imap.of_bmap m) ~permutable:true ~coincident
    in
    Schedule_tree.Band (band, Schedule_tree.Leaf)
  end

let group_subtree ?only (p : Prog.t) (g : Fusion.group) ~name =
  let stmts =
    match only with
    | None -> g.Fusion.stmts
    | Some subset -> List.filter (fun s -> List.mem s subset) g.Fusion.stmts
  in
  let inner =
    match stmts with
    | [ s ] -> inner_of_stmt p g s
    | _ ->
        Schedule_tree.Sequence
          (List.map
             (fun s ->
               Schedule_tree.Filter (stmt_filter p [ s ], inner_of_stmt p g s))
             stmts)
  in
  let band =
    let full = group_band p g ~name in
    match only with
    | None -> full
    | Some subset ->
        { full with
          Schedule_tree.partial =
            Presburger.Imap.of_bmaps
              (List.filter
                 (fun piece ->
                   List.mem (Presburger.Bmap.space piece).Presburger.Space.in_tuple
                     subset)
                 (Presburger.Imap.pieces full.Schedule_tree.partial))
        }
  in
  let body =
    if g.Fusion.band_dims = 0 then inner else Schedule_tree.Band (band, inner)
  in
  Schedule_tree.Filter (stmt_filter p stmts, body)

let initial_tree (p : Prog.t) (r : Fusion.result) =
  Obs.span "scheduler.initial_tree" @@ fun () ->
  let domain = stmt_filter p (List.map (fun s -> s.Prog.stmt_name) p.Prog.stmts) in
  let children =
    List.mapi
      (fun i g -> group_subtree p g ~name:(band_name i))
      r.Fusion.groups
  in
  match children with
  | [ single ] -> Schedule_tree.Domain (domain, single)
  | _ -> Schedule_tree.Domain (domain, Schedule_tree.Sequence children)
